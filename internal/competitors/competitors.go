// Package competitors models the four distributed SQL systems the paper
// compares against in §4.3 (Figure 12(a), Table 2) as execution *styles*
// layered on the shared substrate. The closed-source systems themselves
// cannot be reproduced; what the comparison measures is the cost of their
// execution paradigms, and those paradigms are executed for real here:
//
//   - SparkSQLStyle: a JVM-ish, row-at-a-time interpreted iterator engine.
//     Every scanned and exchanged batch is converted to boxed []any rows
//     and pulled through a chain of virtual operator calls, one row at a
//     time, and the shuffle uses TCP. This is the Volcano-with-boxed-
//     tuples cost profile that makes Spark SQL ~two orders of magnitude
//     slower than a compiled engine on scan-heavy TPC-H plans.
//   - ImpalaStyle: runtime code generation (no boxing) but scan-time
//     deserialization: tables live in a serialized on-disk format
//     (Parquet stand-in: our wire codec) and every scan decodes them,
//     plus a moderate per-row interpretation residue; TCP shuffles.
//   - MemSQLStyle: a row-store with partitioned placement and index
//     joins: modest per-row overhead over the columnar engine, TCP
//     shuffles, partitioned placement.
//   - VectorwiseStyle: a vectorized engine (no per-row overhead) with
//     *classic* exchange-operator parallelism over TCP (Vortex uses MPI
//     over InfiniBand) and partitioned placement.
//
// The absolute factors of the paper (256×/168×/38×/5.4×) are properties
// of the authors' testbed; what must reproduce is the ordering and the
// rough magnitudes, which these styles generate from executed work.
package competitors

import (
	"fmt"
	"sync/atomic"

	"hsqp/internal/cluster"
	"hsqp/internal/engine"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

// Style identifies a modeled system.
type Style int

const (
	// HyPerStyle is the paper's engine: compiled, RDMA, scheduled.
	HyPerStyle Style = iota
	// HyPerTCPStyle is the paper's engine over tuned IPoIB TCP.
	HyPerTCPStyle
	// VectorwiseStyle models Vectorwise Vortex.
	VectorwiseStyle
	// MemSQLStyle models MemSQL 4.
	MemSQLStyle
	// ImpalaStyle models Cloudera Impala 2.2.
	ImpalaStyle
	// SparkSQLStyle models Spark SQL 1.3.
	SparkSQLStyle
)

func (s Style) String() string {
	switch s {
	case HyPerStyle:
		return "HyPer (RDMA)"
	case HyPerTCPStyle:
		return "HyPer (TCP)"
	case VectorwiseStyle:
		return "Vectorwise-style"
	case MemSQLStyle:
		return "MemSQL-style"
	case ImpalaStyle:
		return "Impala-style"
	case SparkSQLStyle:
		return "SparkSQL-style"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Partitioned reports whether the style loads data with partitioned
// placement (like MemSQL and Vectorwise in §4.3.1).
func (s Style) Partitioned() bool {
	return s == MemSQLStyle || s == VectorwiseStyle
}

// ClusterConfig returns the cluster configuration of a style.
func ClusterConfig(s Style, servers int, workers int, timeScale float64) cluster.Config {
	cfg := cluster.Config{
		Servers:          servers,
		WorkersPerServer: workers,
		TimeScale:        timeScale,
	}
	switch s {
	case HyPerStyle:
		cfg.Transport = cluster.RDMA
		cfg.Scheduling = true
	case HyPerTCPStyle:
		cfg.Transport = cluster.TCPoIB
	case VectorwiseStyle:
		cfg.Transport = cluster.TCPoIB
		cfg.Classic = true
	case MemSQLStyle:
		cfg.Transport = cluster.TCPoIB
		cfg.AfterScan = rowEngineOps(2)
		cfg.AfterExchange = rowEngineOps(2)
	case ImpalaStyle:
		cfg.Transport = cluster.TCPoIB
		cfg.AfterScan = scanDeserializeOps(4)
		cfg.AfterExchange = rowEngineOps(4)
	case SparkSQLStyle:
		cfg.Transport = cluster.TCPoIB
		cfg.AfterScan = rowEngineOps(10)
		cfg.AfterExchange = rowEngineOps(10)
	}
	return cfg
}

// rowEngineOps returns an operator factory that pulls every tuple through
// `depth` boxed iterator calls.
func rowEngineOps(depth int) func(*storage.Schema) []engine.Op {
	return func(schema *storage.Schema) []engine.Op {
		return []engine.Op{NewBoxedIterator(schema, depth)}
	}
}

// scanDeserializeOps models Parquet-decoding scans followed by a light
// interpreted residue.
func scanDeserializeOps(depth int) func(*storage.Schema) []engine.Op {
	return func(schema *storage.Schema) []engine.Op {
		return []engine.Op{NewScanDeserializer(schema), NewBoxedIterator(schema, depth)}
	}
}

// BoxedIterator is the interpreted-row overhead operator: it materializes
// every tuple as a boxed []any row and pulls it through a chain of `depth`
// dynamically dispatched iterator stages, then rebuilds the columnar
// batch. The work is real (allocations, interface dispatch, per-row
// copies), not a timer.
type BoxedIterator struct {
	schema *storage.Schema
	stages []rowStage
}

// rowStage is one Volcano-style operator in the interpreted chain.
type rowStage interface {
	next(row []any) []any
}

// identityStage's counter is shared by all workers running the pipeline
// (Ops must be safe for concurrent use), so the per-row tally is
// accumulated locally and published with one atomic add.
type identityStage struct{ counter atomic.Int64 }

func (s *identityStage) next(row []any) []any {
	// Touch every attribute like an expression interpreter would.
	var c int64
	for _, v := range row {
		switch x := v.(type) {
		case int64:
			c += x & 1
		case string:
			c += int64(len(x) & 1)
		case float64:
			if x != 0 {
				c++
			}
		}
	}
	s.counter.Add(c)
	return row
}

// NewBoxedIterator builds the overhead operator.
func NewBoxedIterator(schema *storage.Schema, depth int) *BoxedIterator {
	b := &BoxedIterator{schema: schema}
	for i := 0; i < depth; i++ {
		b.stages = append(b.stages, &identityStage{})
	}
	return b
}

// Process implements engine.Op.
func (bi *BoxedIterator) Process(_ *engine.Worker, b *storage.Batch) *storage.Batch {
	n := b.Rows()
	out := storage.NewBatch(b.Schema, n)
	for i := 0; i < n; i++ {
		row := b.Row(i) // box
		for _, st := range bi.stages {
			row = st.next(row) // virtual dispatch per operator per row
		}
		out.AppendRow(row...) // unbox
	}
	return out
}

// ScanDeserializer encodes and decodes every scanned morsel through the
// wire codec, standing in for reading a serialized storage format
// (Impala's Parquet scans; the paper measured <30% of execution time in
// deserialization, §4.3).
type ScanDeserializer struct {
	codec *ser.Codec
}

// NewScanDeserializer builds the operator.
func NewScanDeserializer(schema *storage.Schema) *ScanDeserializer {
	return &ScanDeserializer{codec: ser.NewCodec(schema)}
}

// Process implements engine.Op.
func (sd *ScanDeserializer) Process(_ *engine.Worker, b *storage.Batch) *storage.Batch {
	n := b.Rows()
	buf := make([]byte, 0, n*32)
	for i := 0; i < n; i++ {
		buf = sd.codec.EncodeRow(b, i, buf)
	}
	out := storage.NewBatch(b.Schema, n)
	if _, err := sd.codec.DecodeAll(buf, out); err != nil {
		panic(fmt.Sprintf("competitors: self round-trip failed: %v", err))
	}
	return out
}

// Styles lists all modeled systems in the paper's Figure 12(a) order.
func Styles() []Style {
	return []Style{SparkSQLStyle, ImpalaStyle, MemSQLStyle, VectorwiseStyle, HyPerStyle}
}
