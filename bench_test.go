// Package hsqp's benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation. Each benchmark regenerates the
// corresponding rows/series (printed with -v through b.Log) and reports a
// headline number via b.ReportMetric. Parameters are scaled down so the
// whole suite runs in minutes; cmd/hsqp `experiment -id <x> -full` runs
// the full grids.
package hsqp

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"hsqp/internal/bench"
	"hsqp/internal/cluster"
	"hsqp/internal/obs"
	"hsqp/internal/queries"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// logTable emits the experiment's table through the benchmark log.
func logTable(b *testing.B, buf *bytes.Buffer) {
	b.Helper()
	b.Log("\n" + buf.String())
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		bench.Table1(&buf)
		if i == 0 {
			logTable(b, &buf)
		}
	}
}

func BenchmarkFigure2HybridVsClassic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		pts, err := bench.Figure2{
			Workload:  bench.Workload{SF: 0.05},
			Servers:   3,
			CoreSteps: []int{1, 2, 4},
		}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			last := pts[len(pts)-1]
			b.ReportMetric(pts[0].Hybrid.Seconds()/last.Hybrid.Seconds(), "hybrid-speedup")
			b.ReportMetric(pts[0].Classic.Seconds()/last.Classic.Seconds(), "classic-speedup")
		}
	}
}

func BenchmarkFigure3ScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		pts, err := bench.Figure3{
			Workload:   bench.Workload{SF: 0.1},
			MaxServers: 4,
		}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			last := pts[len(pts)-1]
			b.ReportMetric(last.Speedup["RDMA+sched"], "rdma-speedup")
			b.ReportMetric(last.Speedup["TCP/GbE"], "gbe-speedup")
		}
	}
}

func BenchmarkFigure4MemoryTrips(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		bench.Figure4(&buf)
		if i == 0 {
			logTable(b, &buf)
		}
	}
}

func BenchmarkFigure5TransportTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		pts, err := bench.Figure5{Messages: 120}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			for _, p := range pts {
				if p.Name == "default RDMA" {
					b.ReportMetric(p.Unidirectional, "rdma-GB/s")
				}
				if p.Name == "TCP w/o offload" {
					b.ReportMetric(p.Unidirectional, "tcp-slow-GB/s")
				}
			}
		}
	}
}

func BenchmarkFigure6PlanShapes(b *testing.B) {
	// Figure 6 is the Q17 plan transformation; regenerating it is plan
	// construction + explain.
	for i := 0; i < b.N; i++ {
		q := queries.MustBuild(17, queries.Params{SF: 1})
		if len(q.Name) == 0 {
			b.Fatal("no plan")
		}
	}
}

func BenchmarkFigure8Serialization(b *testing.B) {
	// Serialization throughput of the densely packed format over the
	// Figure 8 example relation (partsupp).
	db := tpch.Generate(0.01, 42)
	ps := db.Tables["partsupp"]
	codec := ser.NewCodec(ps.Schema)
	var bytesTotal int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf []byte
		for r := 0; r < ps.Rows(); r++ {
			buf = codec.EncodeRow(ps, r, buf)
		}
		out := storage.NewBatch(ps.Schema, ps.Rows())
		if _, err := codec.DecodeAll(buf, out); err != nil {
			b.Fatal(err)
		}
		bytesTotal += int64(len(buf))
	}
	b.SetBytes(bytesTotal / int64(b.N))
}

func BenchmarkFigure9NUMAAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		pts, err := bench.Figure9{Workload: bench.Workload{SF: 0.05}}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			b.ReportMetric(pts[2].RemoteFrac, "one-socket-remote-frac")
		}
	}
}

func BenchmarkFigure10bScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		pts, err := bench.Figure10b{ServerList: []int{2, 6, 8}}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			last := pts[len(pts)-1]
			b.ReportMetric(last.RoundRobin/last.AllToAll-1, "improvement-at-8")
		}
	}
}

func BenchmarkFigure10cMessageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := (bench.Figure10c{}).Run(&buf); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
		}
	}
}

func BenchmarkFigure11PerQueryScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_, err := bench.Figure11{
			Workload:   bench.Workload{SF: 0.05, Queries: []int{1, 5, 12}},
			ServerList: []int{1, 3},
		}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
		}
	}
}

func BenchmarkFigure12aSystems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		pts, err := bench.Figure12a{
			Workload:           bench.Workload{SF: 0.02},
			IncludeInterpreted: true,
		}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			b.ReportMetric(pts[len(pts)-1].QpH, "hyper-partitioned-qph")
			b.ReportMetric(pts[0].QpH, "slowest-style-qph")
		}
	}
}

func BenchmarkFigure12bBandwidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_, err := bench.Figure12b{Workload: bench.Workload{SF: 0.05}}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
		}
	}
}

func BenchmarkTable2DetailedRuntimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		cols, err := bench.Table2{Workload: bench.Workload{SF: 0.05}}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			for _, c := range cols {
				if c.System == "HyPer (partitioned)" {
					b.ReportMetric(c.QpH, "hyper-partitioned-qph")
				}
			}
		}
	}
}

func BenchmarkSchedulingImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		pts, err := bench.SchedulingImpact{Workload: bench.Workload{SF: 0.1}}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			for _, p := range pts {
				b.ReportMetric(p.Improvement, fmt.Sprintf("improvement-%s", p.Transport))
			}
		}
	}
}

func BenchmarkScaleFactorScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		ratio, err := bench.ScaleFactorScaling{Workload: bench.Workload{SF: 0.03}}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			b.ReportMetric(ratio, "time-ratio-3x-data")
		}
	}
}

func BenchmarkSkewAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		pts := bench.Skew{}.Run(&buf)
		if i == 0 {
			logTable(b, &buf)
			b.ReportMetric(pts[0].Overload, "overload-6-units")
			b.ReportMetric(pts[1].Overload, "overload-240-units")
		}
	}
}

func BenchmarkSkewedJoinWorkStealing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		pts, err := bench.SkewedJoin{}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			b.ReportMetric(pts[1].Time.Seconds()/pts[0].Time.Seconds(), "classic-slowdown")
		}
	}
}

func BenchmarkAblationPreAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		res, err := bench.PreAggAblation{}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			b.ReportMetric(float64(res.BytesWithout)/float64(res.BytesWith), "shuffle-reduction")
		}
	}
}

func BenchmarkAblationGroupJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		gj, aj, err := bench.GroupJoinAblation{}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, &buf)
			b.ReportMetric(aj.Seconds()/gj.Seconds(), "aggjoin-vs-groupjoin")
		}
	}
}

// BenchmarkDAGvsSerial measures the compute/communication overlap win of
// the pipeline-DAG scheduler against the old ordered-pipeline-list
// execution on one distributed TPC-H join query (Q12). The dag case
// reports the measured overlap ratio and peak pipeline concurrency.
func BenchmarkDAGvsSerial(b *testing.B) {
	bench.Warmup()
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"dag", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c, err := cluster.New(cluster.Config{
				Servers:          3,
				WorkersPerServer: 4,
				Transport:        cluster.RDMA,
				Scheduling:       true,
				Serial:           mode.serial,
				TimeScale:        cluster.DefaultTimeScale,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			c.LoadTPCH(bench.DB(0.05, 42), false)
			q := queries.MustBuild(12, queries.Params{SF: 0.05})
			b.ResetTimer()
			var overlap float64
			var concurrent int
			for i := 0; i < b.N; i++ {
				_, stats, err := c.Run(q)
				if err != nil {
					b.Fatal(err)
				}
				if o := stats.MaxOverlap(); o > overlap {
					overlap = o
				}
				if cc := stats.PeakConcurrentPipelines(); cc > concurrent {
					concurrent = cc
				}
			}
			b.ReportMetric(overlap, "overlap-ratio")
			b.ReportMetric(float64(concurrent), "peak-pipelines")
		})
	}
}

// BenchmarkSingleQuery measures one distributed TPC-H query end to end:
// the building block of every engine experiment.
func BenchmarkSingleQuery(b *testing.B) {
	bench.Warmup()
	c, err := cluster.New(cluster.Config{
		Servers:          3,
		WorkersPerServer: 4,
		Transport:        cluster.RDMA,
		Scheduling:       true,
		TimeScale:        cluster.DefaultTimeScale,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.LoadTPCH(bench.DB(0.05, 42), false)
	q := queries.MustBuild(5, queries.Params{SF: 0.05})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughput is the multi-query headline: 8 concurrent TPC-H Q12
// streams on the shared 3-server engine versus the same queries run
// serially. Reported metrics are queries/sec in both modes and the
// concurrent/serial speedup (CI tracks these in BENCH_5.json).
func BenchmarkThroughput(b *testing.B) {
	bench.Warmup()
	var buf bytes.Buffer
	var last bench.ThroughputResult
	for i := 0; i < b.N; i++ {
		buf.Reset()
		res, err := bench.Throughput{}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	logTable(b, &buf)
	b.ReportMetric(last.SerialQPS, "serial-qps")
	b.ReportMetric(last.ConcurrentQPS, "concurrent-qps")
	b.ReportMetric(last.Speedup, "speedup")
	b.ReportMetric(float64(last.ConcurrentP99.Milliseconds()), "p99-ms")
}

// BenchmarkFusedHotPath measures the single-pass fused operator path
// against the one-materialization-per-operator ablation on the two
// select/map-heavy TPC-H plans (Q1: select+map before a wide aggregate;
// Q12: selective filters feeding a join). Single server takes the network
// out of the measurement; allocs/op shows the scratch-pooling win.
func BenchmarkFusedHotPath(b *testing.B) {
	bench.Warmup()
	for _, qn := range []int{1, 12} {
		for _, mode := range []struct {
			name   string
			nofuse bool
		}{{"fused", false}, {"nofuse", true}} {
			b.Run(fmt.Sprintf("q%02d/%s", qn, mode.name), func(b *testing.B) {
				c, err := cluster.New(cluster.Config{
					Servers:          1,
					WorkersPerServer: 4,
					Transport:        cluster.RDMA,
					Scheduling:       true,
					TimeScale:        cluster.DefaultTimeScale,
					NoFuse:           mode.nofuse,
					NoPushdown:       mode.nofuse,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				c.LoadTPCH(bench.DB(0.05, 42), false)
				q := queries.MustBuild(qn, queries.Params{SF: 0.05})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := c.Run(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkServing measures the serving tier's three latency paths over a
// loopback socket — cold (plan build + per-server prepare + execute),
// plan-cache hit (execute on a cached plan) and result-cache hit (encoded
// bytes, no execution) — plus the weighted-fair fairness phase. CI tracks
// the reported metrics in BENCH_7.json; the acceptance bar is
// planhit-speedup > 1 (a plan-cache hit is measurably cheaper than cold
// compile+run) and resulthit-speedup well above it.
func BenchmarkServing(b *testing.B) {
	bench.Warmup()
	var buf bytes.Buffer
	var last bench.ServingResult
	for i := 0; i < b.N; i++ {
		buf.Reset()
		res, err := bench.Serving{}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	logTable(b, &buf)
	b.ReportMetric(float64(last.ColdP50.Microseconds())/1000, "cold-ms")
	b.ReportMetric(float64(last.PlanHitP50.Microseconds())/1000, "planhit-ms")
	b.ReportMetric(float64(last.ResultHitP50.Microseconds())/1000, "resulthit-ms")
	b.ReportMetric(last.PlanSpeedup, "planhit-speedup")
	b.ReportMetric(last.ResultSpeedup, "resulthit-speedup")
	for _, ts := range last.Tenants {
		b.ReportMetric(float64(ts.QueueP99.Microseconds())/1000, ts.Tenant+"-queue-p99-ms")
	}
}

// BenchmarkObsOverhead measures the cost of the always-on observability
// instrumentation (metric updates on the morsel/exchange hot paths plus
// trace assembly) by running the same distributed Q12 with instrumentation
// enabled and disabled, interleaved to cancel thermal/GC drift. CI tracks
// obs-overhead-ratio in BENCH_8.json; the acceptance bar is ≤ 1.02
// (instrumented within 2% of the -noobs ablation).
func BenchmarkObsOverhead(b *testing.B) {
	bench.Warmup()
	c, err := cluster.New(cluster.Config{
		Servers:          3,
		WorkersPerServer: 4,
		Transport:        cluster.RDMA,
		Scheduling:       true,
		TimeScale:        cluster.DefaultTimeScale,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.LoadTPCH(bench.DB(0.05, 42), false)
	q := queries.MustBuild(12, queries.Params{SF: 0.05})
	defer obs.SetEnabled(true)

	run := func(enabled bool) time.Duration {
		obs.SetEnabled(enabled)
		start := time.Now()
		if _, _, err := c.Run(q); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm both paths before timing.
	run(true)
	run(false)

	// Interleaved samples compared at the 25th percentile: GC pauses and
	// scheduler hiccups only ever add time, so the fast quartile is the
	// cleanest view of the actual per-query cost in either mode.
	const pairs = 24
	b.ResetTimer()
	var on, off []time.Duration
	for i := 0; i < b.N; i++ {
		for p := 0; p < pairs; p++ {
			// Alternate which mode runs first so systematic drift within a
			// pair (cache warmth, background work) cancels.
			if p%2 == 0 {
				on = append(on, run(true))
				off = append(off, run(false))
			} else {
				off = append(off, run(false))
				on = append(on, run(true))
			}
		}
	}
	onQ, offQ := benchQuartile(on), benchQuartile(off)
	b.ReportMetric(onQ.Seconds()/offQ.Seconds(), "obs-overhead-ratio")
	b.ReportMetric(onQ.Seconds()*1000, "instrumented-ms")
	b.ReportMetric(offQ.Seconds()*1000, "noobs-ms")
}

func benchQuartile(d []time.Duration) time.Duration {
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/4]
}

// BenchmarkThroughputMixed runs the Q1/Q12 mixed-stream variant.
func BenchmarkThroughputMixed(b *testing.B) {
	bench.Warmup()
	var buf bytes.Buffer
	var last bench.ThroughputResult
	for i := 0; i < b.N; i++ {
		buf.Reset()
		res, err := bench.Throughput{Queries: []int{1, 12}}.Run(&buf)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	logTable(b, &buf)
	b.ReportMetric(last.SerialQPS, "serial-qps")
	b.ReportMetric(last.ConcurrentQPS, "concurrent-qps")
	b.ReportMetric(last.Speedup, "speedup")
}
