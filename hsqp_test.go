package hsqp

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README shows.
func TestFacadeEndToEnd(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Servers:          2,
		WorkersPerServer: 2,
		Transport:        RDMA,
		Scheduling:       true,
		TimeScale:        0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.LoadTPCH(GenerateTPCH(0.005, 42), false)

	res, stats, err := c.Run(TPCHQuery(6, 0.005))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 1 || res.Cols[0].I64[0] <= 0 {
		t.Fatalf("Q6 result: %v", res.Row(0))
	}
	if stats.Duration <= 0 {
		t.Fatal("no duration measured")
	}
	if out := ExplainQuery(TPCHQuery(17, 1)); !strings.Contains(out, "groupjoin") {
		t.Fatalf("explain: %s", out)
	}
	var buf bytes.Buffer
	ExperimentTable1(&buf)
	if !strings.Contains(buf.String(), "IB 4xQDR") {
		t.Fatal("Table 1 output incomplete")
	}
	if TwoSocketTopology().Sockets != 2 || FourSocketTopology().Sockets != 4 {
		t.Fatal("topology helpers broken")
	}
}
