GO ?= go

.PHONY: all build test race lint fmt fuzz-seed

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The repo's invariant linter (see docs/invariants.md) plus the vet
# checks CI enforces. nilness is not in `go vet`; hsqplint ships its own.
lint:
	$(GO) vet ./...
	$(GO) vet -copylocks ./...
	$(GO) run ./cmd/hsqplint ./...

fmt:
	gofmt -l -w .

# Replay the wire-format fuzz seed corpus under the race detector,
# mirroring the CI race matrix.
fuzz-seed:
	$(GO) test -race ./internal/ser -run '^FuzzCodecRoundTrip$$'
