// Package hsqp is a from-scratch Go reproduction of "High-Speed Query
// Processing over High-Speed Networks" (Rödiger, Mühlbauer, Kemper,
// Neumann; PVLDB 9(4), 2015): a distributed, NUMA-aware, morsel-driven
// analytical query engine built on an RDMA-style communication multiplexer
// with application-level round-robin network scheduling — running on a
// simulated InfiniBand/Ethernet fabric so the paper's cluster experiments
// reproduce on a single machine.
//
// # Execution model
//
// Queries compile, per server, into a *pipeline DAG*: dependency edges
// (hash-build before probe, materialized aggregate/sort before its
// consumer, coordinator merges last) are emitted by the plan compiler
// rather than implied by pipeline order. Each server owns a persistent,
// NUMA-pinned worker pool; a scheduler tracks pipeline readiness by
// in-degree counting and dispatches morsels from all runnable pipelines
// to idle workers — NUMA-local morsels first, then stealing across
// sockets and across pipelines when a socket runs dry. Exchange-receive
// pipelines poll the communication multiplexer without blocking a worker,
// so they start the moment the first message lands and overlap with
// upstream compute: the hybrid parallelism of §3 that keeps every core
// and every link busy simultaneously. QueryStats reports the per-pipeline
// wall/busy intervals and the resulting compute/communication overlap
// ratio per server.
//
// This package is the public facade. A minimal session looks like:
//
//	c, _ := hsqp.NewCluster(hsqp.ClusterConfig{Servers: 6, Transport: hsqp.RDMA, Scheduling: true})
//	defer c.Close()
//	c.LoadTPCH(hsqp.GenerateTPCH(0.1, 42), false)
//	result, stats, _ := c.RunContext(ctx, hsqp.TPCHQuery(5, 0.1))
//	fmt.Println(stats.Duration, stats.MaxOverlap())
//
// The paper's tables and figures regenerate through the Experiments API
// (see ExperimentTable1 … or `go test -bench .` / cmd/hsqp).
package hsqp

import (
	"io"
	"net/http"

	"hsqp/internal/bench"
	"hsqp/internal/cluster"
	"hsqp/internal/engine"
	"hsqp/internal/fabric"
	"hsqp/internal/numa"
	"hsqp/internal/obs"
	"hsqp/internal/plan"
	"hsqp/internal/queries"
	"hsqp/internal/serve"
	"hsqp/internal/sim"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// ClusterConfig configures a simulated cluster (see cluster.Config).
type ClusterConfig = cluster.Config

// Cluster is a running simulated deployment.
type Cluster = cluster.Cluster

// QueryStats reports per-query network activity plus per-pipeline
// scheduling intervals and the compute/communication overlap ratio.
type QueryStats = cluster.QueryStats

// PipelineStat is one pipeline's wall/busy interval inside a query run.
type PipelineStat = engine.PipelineStat

// Transport kinds (Figure 3's three engines).
const (
	RDMA   = cluster.RDMA
	TCPoIB = cluster.TCPoIB
	TCPGbE = cluster.TCPGbE
)

// Data rates (Table 1).
const (
	GbE     = fabric.GbE
	IB4xSDR = fabric.IB4xSDR
	IB4xDDR = fabric.IB4xDDR
	IB4xQDR = fabric.IB4xQDR
)

// Placement policies for LoadTable.
const (
	PlacementChunked     = storage.PlacementChunked
	PlacementPartitioned = storage.PlacementPartitioned
	PlacementReplicated  = storage.PlacementReplicated
)

// NUMA buffer allocation policies (Figure 9).
const (
	AllocLocal        = numa.AllocLocal
	AllocInterleaved  = numa.AllocInterleaved
	AllocSingleSocket = numa.AllocSingleSocket
)

// Session is the admission-controlled multi-query entry point: at most
// MaxConcurrent queries execute at once over a cluster's shared worker
// pools and fabric, at most MaxQueued more wait in line, and anything
// beyond fails fast with ErrOverloaded (see cluster.Session).
type Session = cluster.Session

// SessionConfig tunes a Session's admission control.
type SessionConfig = cluster.SessionConfig

// QueryOutcome is one query's result within a RunConcurrent batch.
type QueryOutcome = cluster.QueryOutcome

// ErrOverloaded is returned by Session.Run when the admission queue is
// full.
var ErrOverloaded = cluster.ErrOverloaded

// ErrSessionClosed is returned by Session.Run after Close, and by queries
// still queued when Close drains the session.
var ErrSessionClosed = cluster.ErrSessionClosed

// Prepared is a prepared statement on a cluster: compiled and validated on
// every server once, then executed repeatedly (cluster.Prepare).
type Prepared = cluster.Prepared

// --- unified run API, elasticity and fault tolerance ---

// RunOption customizes one RunContext call (tenant label, restart bound,
// result-cache bypass).
type RunOption = cluster.RunOption

// WithTenant labels the query with a tenant for weighted-fair admission.
func WithTenant(tenant string) RunOption { return cluster.WithTenant(tenant) }

// WithMaxRestarts bounds transparent restarts after server losses for one
// query (default cluster.DefaultMaxRestarts).
func WithMaxRestarts(n int) RunOption { return cluster.WithMaxRestarts(n) }

// WithBypassResultCache forces execution even when the serving tier holds
// a cached result for the statement.
func WithBypassResultCache() RunOption { return cluster.WithBypassResultCache() }

// ErrServerLost marks a query failure caused by losing a server; when the
// loss is recoverable RunContext retries transparently and the error is
// only surfaced once restarts are exhausted.
var ErrServerLost = cluster.ErrServerLost

// FaultKind selects what happens to the targeted server.
type FaultKind = sim.FaultKind

// QueryPhase is the execution phase at which ClusterConfig.PhaseHook
// fires (and at which an armed fault triggers).
type QueryPhase = sim.QueryPhase

// Fault kinds for the chaos harness (sim.FaultInjector against a Cluster).
const (
	FaultKill      = sim.FaultKill
	FaultHang      = sim.FaultHang
	FaultPartition = sim.FaultPartition
)

// Query phases at which an armed fault fires.
const (
	PhaseCompiled  = sim.PhaseCompiled
	PhaseExecuting = sim.PhaseExecuting
)

// FaultPlan describes one fault: which server, what happens, at which
// query phase.
type FaultPlan = sim.FaultPlan

// FaultInjector arms a single fault against a cluster and fires it the
// first time the planned phase is reached; wire its OnPhase method into
// ClusterConfig.PhaseHook.
type FaultInjector = sim.FaultInjector

// NewFaultInjector arms plan against target (typically a *Cluster).
func NewFaultInjector(target sim.Target, plan FaultPlan) *FaultInjector {
	return sim.NewFaultInjector(target, plan)
}

// --- serving tier (cmd/hsqpd): network protocol, caches, QoS ---

// ServeConfig configures the network serving tier over a cluster: wire
// protocol endpoint, compiled-plan cache, single-flight result cache and
// per-tenant weighted-fair admission (see serve.Config).
type ServeConfig = serve.Config

// Server is the serving tier's front door (serve.Server).
type Server = serve.Server

// Client is one tenant connection to a Server (serve.Client).
type Client = serve.Client

// ExecStats reports one served request: rows, cache path (plan hit /
// result hit / shared), and the queue/compile/execute latency split.
type ExecStats = serve.ExecStats

// ExecOpts tunes one served request (e.g. BypassResultCache).
type ExecOpts = serve.ExecOpts

// TenantStats is one tenant's serving-path SLO snapshot (served count and
// queue/total p50/p99).
type TenantStats = serve.TenantStats

// NewServer creates a serving tier over a cluster; drive it with
// Server.Serve on a net.Listener and stop it with Server.Shutdown.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// DialServer connects to a serving tier as the given tenant.
func DialServer(addr, tenant string) (*Client, error) { return serve.Dial(addr, tenant) }

// --- observability: metrics registry, exposition, per-query tracing ---

// QueryTrace is a per-query distributed trace: queue/compile spans on the
// coordinator track plus every server's pipeline and exchange spans.
// QueryStats.Trace and QueryOutcome.Trace carry one per run; render it
// with its WriteChromeJSON (chrome://tracing / Perfetto format).
type QueryTrace = obs.Trace

// TraceSpan is one interval in a QueryTrace.
type TraceSpan = obs.Span

// SlowQuery is one slow-request record as logged by the serving tier.
type SlowQuery = obs.SlowQuery

// MetricsHandler serves the process-wide metrics registry — counters,
// gauges and histograms from every layer (serve, cluster, engine,
// exchange, mux) — in Prometheus text exposition format. Mount it on any
// http.ServeMux; `hsqpd -metrics-addr` does exactly this.
func MetricsHandler() http.Handler { return obs.Handler(obs.Default()) }

// WriteMetrics writes the process-wide registry in Prometheus text format.
func WriteMetrics(w io.Writer) error { return obs.Default().WriteText(w) }

// SetObservability toggles all instrumentation (metric updates and trace
// collection) at runtime. It defaults to on; `hsqpd -noobs` and the
// overhead ablation benchmark turn it off.
func SetObservability(on bool) { obs.SetEnabled(on) }

// Query is a compiled logical plan.
type Query = plan.Query

// Batch is a columnar result set.
type Batch = storage.Batch

// TPCHDatabase is a generated TPC-H database.
type TPCHDatabase = tpch.Database

// NewCluster builds and starts a simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// GenerateTPCH builds the TPC-H database at the given scale factor,
// deterministically from seed.
func GenerateTPCH(sf float64, seed uint64) *TPCHDatabase { return tpch.Generate(sf, seed) }

// TPCHQuery returns TPC-H query q (1–22) as an executable plan. sf feeds
// the scale-dependent parameters (Q11).
func TPCHQuery(q int, sf float64) *Query {
	return queries.MustBuild(q, queries.Params{SF: sf})
}

// ExplainQuery renders a query plan tree (Figure 6 style).
func ExplainQuery(q *Query) string { return plan.Explain(q) }

// TwoSocketTopology is the paper's evaluation server (2×10 cores).
func TwoSocketTopology() *numa.Topology { return numa.TwoSocket() }

// FourSocketTopology is the Figure 9 server (4×15 cores).
func FourSocketTopology() *numa.Topology { return numa.FourSocket() }

// --- experiment façade: one entry point per paper table/figure ---

// Workload selects the dataset and query subset of an experiment.
type Workload = bench.Workload

// ExperimentTable1 prints the data-link standards table.
func ExperimentTable1(w io.Writer) { bench.Table1(w) }

// ExperimentFigure2 runs hybrid vs classic core scaling.
func ExperimentFigure2(w io.Writer, wl Workload) error {
	_, err := bench.Figure2{Workload: wl}.Run(w)
	return err
}

// ExperimentFigure3 runs the scale-out comparison of the three engines.
func ExperimentFigure3(w io.Writer, wl Workload, maxServers int) error {
	_, err := bench.Figure3{Workload: wl, MaxServers: maxServers}.Run(w)
	return err
}

// ExperimentFigure5 runs the transport tuning microbenchmark.
func ExperimentFigure5(w io.Writer) error {
	_, err := bench.Figure5{}.Run(w)
	return err
}

// ExperimentFigure9 runs the NUMA allocation-policy comparison.
func ExperimentFigure9(w io.Writer, wl Workload) error {
	_, err := bench.Figure9{Workload: wl}.Run(w)
	return err
}

// ExperimentFigure10b runs all-to-all vs round-robin scheduling.
func ExperimentFigure10b(w io.Writer) error {
	_, err := bench.Figure10b{}.Run(w)
	return err
}

// ExperimentFigure12a runs the system-style comparison.
func ExperimentFigure12a(w io.Writer, wl Workload) error {
	_, err := bench.Figure12a{Workload: wl}.Run(w)
	return err
}

// ExperimentThroughput runs the multi-query throughput comparison:
// N concurrent TPC-H streams through a Session versus the same queries
// back-to-back, reporting qps and p50/p99 latency for both modes.
func ExperimentThroughput(w io.Writer, streams int) error {
	_, err := bench.Throughput{Streams: streams}.Run(w)
	return err
}

// ExperimentServing measures the serving tier's latency paths over a
// loopback socket — cold statement, plan-cache hit, result-cache hit —
// plus per-tenant latency under weighted-fair admission.
func ExperimentServing(w io.Writer) error {
	_, err := bench.Serving{}.Run(w)
	return err
}

// ExperimentChaos measures per-query fault tolerance: one server is
// killed, hung, or partitioned mid-query and the coordinator detects the
// loss, evicts the server, and transparently restarts on the survivors;
// plus the cost of online AddServer/RemoveServer membership changes.
func ExperimentChaos(w io.Writer) error {
	_, err := bench.Chaos{}.Run(w)
	return err
}
