// Distributed-join: shows how data placement and join strategy shape
// network traffic — the §4.1/§4.3 story. The same join (TPC-H Q12:
// lineitem ⨝ orders) runs under chunked placement (every join shuffles)
// and partitioned placement (orderkey joins are co-located and ship
// almost nothing), and the plan is printed with its strategies.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"hsqp"
)

func main() {
	const sf = 0.02
	db := hsqp.GenerateTPCH(sf, 42)

	fmt.Println("plan for TPC-H Q12 (join strategies chosen by the optimizer):")
	fmt.Println(hsqp.ExplainQuery(hsqp.TPCHQuery(12, sf)))

	for _, partitioned := range []bool{false, true} {
		c, err := hsqp.NewCluster(hsqp.ClusterConfig{
			Servers:          4,
			WorkersPerServer: 3,
			Transport:        hsqp.RDMA,
			Scheduling:       true,
		})
		if err != nil {
			log.Fatal(err)
		}
		c.LoadTPCH(db, partitioned)
		res, stats, err := c.RunContext(context.Background(), hsqp.TPCHQuery(12, sf))
		if err != nil {
			c.Close()
			log.Fatal(err)
		}
		placement := "chunked    "
		if partitioned {
			placement = "partitioned"
		}
		fmt.Printf("%s placement: %2d result rows in %8v — shuffled %8d bytes in %3d messages\n",
			placement, res.Rows(), stats.Duration, stats.BytesSent, stats.MessagesSent)
		c.Close()
	}
	fmt.Fprintln(os.Stdout, "\npartitioned placement co-locates the l_orderkey ⨝ o_orderkey join,")
	fmt.Fprintln(os.Stdout, "so only the small group-by shuffle and the final gather cross the wire.")
}
