// Quickstart: bring up a simulated 3-server cluster, load TPC-H, run Q1
// and print the pricing summary — the smallest end-to-end use of the
// public API.
package main

import (
	"context"
	"fmt"
	"log"

	"hsqp"
	"hsqp/internal/storage"
)

func main() {
	c, err := hsqp.NewCluster(hsqp.ClusterConfig{
		Servers:          3,
		WorkersPerServer: 4,
		Transport:        hsqp.RDMA,
		Scheduling:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const sf = 0.01
	fmt.Printf("generating TPC-H SF %g and loading it chunked over %d servers…\n", sf, 3)
	c.LoadTPCH(hsqp.GenerateTPCH(sf, 42), false)

	q := hsqp.TPCHQuery(1, sf)
	res, stats, err := c.RunContext(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTPC-H Q1 — pricing summary report (%d rows, %v):\n\n", res.Rows(), stats.Duration)
	fmt.Printf("%-3s %-3s %14s %16s %16s %10s\n",
		"rf", "ls", "sum_qty", "sum_base_price", "sum_disc_price", "count")
	for i := 0; i < res.Rows(); i++ {
		fmt.Printf("%-3s %-3s %14.2f %16.2f %16.2f %10d\n",
			res.Cols[0].Str[i],
			res.Cols[1].Str[i],
			storage.DecimalFloat(res.Cols[2].I64[i]),
			storage.DecimalFloat(res.Cols[3].I64[i]),
			storage.DecimalFloat(res.Cols[4].I64[i]),
			res.Cols[9].I64[i],
		)
	}
	fmt.Printf("\nnetwork: %d messages, %d bytes shuffled, %d stolen from remote NUMA queues\n",
		stats.MessagesSent, stats.BytesSent, stats.StolenMsgs)
}
