// Skew: the §3.1 demonstration plus its mitigation. A shuffle join whose
// key follows a Zipf distribution runs under three engines:
//
//   - static: hybrid parallelism with static hash partitioning — every
//     tuple of a heavy key still lands on its one owning server, whose
//     ingress link becomes the straggler the whole query waits for;
//   - classic: the classic exchange-operator model (n×t fixed parallel
//     units, no stealing) — the Figure 2 baseline;
//   - adaptive: Flow-Join-style skew handling — the send-side exchange
//     samples key hashes through a Space-Saving sketch during the first
//     morsels, all servers agree on the global heavy hitters, then hot
//     build rows are selectively broadcast while hot probe tuples stay on
//     their origin server; cold keys keep hash partitioning.
//
// The comparison runs on the bandwidth-limited GbE transport, where the
// straggler's link bounds the query (on the simulated Infiniband fabric
// this workload is compute-bound and the engines converge).
package main

import (
	"fmt"
	"log"
	"os"

	"hsqp/internal/bench"
	"hsqp/internal/cluster"
)

func main() {
	fmt.Println("skewed shuffle join: static partitioning vs classic exchange vs adaptive skew handling")
	fmt.Println("(Zipf-distributed join key; adaptive = heavy-hitter sketch + selective broadcast)")
	fmt.Println()
	exp := bench.SkewedJoin{
		Servers:   3,
		Workers:   4,
		Rows:      600_000,
		Keys:      20_000,
		Zipf:      1.1,
		Transport: cluster.TCPGbE,
	}
	if _, err := exp.Run(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("skew sweep: the same join across Zipf exponents (z=0 is uniform):")
	sweep := bench.SkewSweep{SkewedJoin: bench.SkewedJoin{
		Servers:   3,
		Workers:   4,
		Rows:      200_000,
		Keys:      20_000,
		Transport: cluster.TCPGbE,
	}}
	if _, err := sweep.Run(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("§3.1 partition-size analysis (no engine, pure distribution):")
	bench.Skew{}.Run(os.Stdout)
}
