// Skew: the §3.1 demonstration. A shuffle join whose key follows a Zipf
// distribution runs under hybrid parallelism (servers are the parallel
// units, workers steal) and under the classic exchange-operator model
// (n×t fixed parallel units, no stealing): the classic engine waits for
// the straggler that owns the heavy keys.
package main

import (
	"fmt"
	"log"
	"os"

	"hsqp/internal/bench"
)

func main() {
	fmt.Println("skewed shuffle join: hybrid parallelism vs classic exchange operators")
	fmt.Println("(Zipf-distributed join key; the classic model fixes each hash partition")
	fmt.Println(" to one worker, so one overloaded worker drags the whole query)")
	fmt.Println()
	exp := bench.SkewedJoin{
		Servers: 3,
		Workers: 4,
		Rows:    600_000,
		Keys:    20_000,
		Zipf:    1.1,
	}
	if _, err := exp.Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("§3.1 partition-size analysis (no engine, pure distribution):")
	bench.Skew{}.Run(os.Stdout)
}
