// Serving over the network: stand up the hsqpd serving tier on a loopback
// socket in-process, then walk one statement through its three latency
// paths — cold (plan build + per-server compile + execution), plan-cache
// hit (execution on a cached prepared plan) and result-cache hit (encoded
// bytes, no execution at all) — plus a prepared-statement round trip and
// the per-tenant QoS snapshot.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"hsqp"
)

func main() {
	c, err := hsqp.NewCluster(hsqp.ClusterConfig{
		Servers:          3,
		WorkersPerServer: 4,
		Transport:        hsqp.RDMA,
		Scheduling:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const sf = 0.01
	fmt.Printf("loading TPC-H SF %g over 3 servers…\n", sf)
	c.LoadTPCH(hsqp.GenerateTPCH(sf, 42), false)

	// The serving tier wraps the cluster: wire protocol, compiled-plan
	// cache, single-flight result cache and weighted-fair admission.
	srv := hsqp.NewServer(hsqp.ServeConfig{
		Cluster: c,
		SF:      sf,
		Seed:    42,
		Tenants: map[string]int{"analytics": 4, "adhoc": 1},
		Slots:   2,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Shutdown()

	cl, err := hsqp.DialServer(lis.Addr().String(), "analytics")
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	run := func(label string, opts hsqp.ExecOpts) {
		t0 := time.Now()
		res, st, err := cl.ExecWithOpts("q12", opts)
		if err != nil {
			log.Fatal(err)
		}
		path := "executed"
		switch {
		case st.ResultHit:
			path = "result-cache hit"
		case st.PlanHit:
			path = "plan-cache hit"
		}
		fmt.Printf("  %-22s %3d rows in %8s  (%s)\n", label, res.Rows(),
			time.Since(t0).Round(time.Microsecond), path)
	}

	bypass := hsqp.ExecOpts{BypassResultCache: true}
	fmt.Println("\nq12 three ways:")
	run("cold", bypass)                   // builds + prepares + executes
	run("warm plan", bypass)              // cached plan, full execution
	cl.Exec("q12")                        // prime the result cache
	run("cached result", hsqp.ExecOpts{}) // encoded bytes only

	// Prepared statements skip statement parsing and pin the plan handle.
	stmt, err := cl.Prepare("q5")
	if err != nil {
		log.Fatal(err)
	}
	res, st, err := stmt.Exec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprepared q5: %d rows, %d result fields, queue %s + compile %s + execute %s\n",
		res.Rows(), len(stmt.Schema().Fields),
		st.QueueWait.Round(time.Microsecond), st.Compile.Round(time.Microsecond),
		st.Exec.Round(time.Microsecond))
	stmt.Close()

	fmt.Println("\nper-tenant QoS snapshot:")
	for _, ts := range srv.TenantStats() {
		fmt.Printf("  %-10s weight %d  served %3d  queue p99 %s\n",
			ts.Tenant, ts.Weight, ts.Served, ts.QueueP99.Round(time.Microsecond))
	}
	pc, rc := srv.PlanCacheStats(), srv.ResultCacheStats()
	fmt.Printf("plan cache: %d hit / %d miss   result cache: %d hit / %d miss (%d B)\n",
		pc.Hits, pc.Misses, rc.Hits, rc.Misses, rc.Bytes)
}
