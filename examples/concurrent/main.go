// Concurrent queries: serve a batch of mixed TPC-H queries from many
// client goroutines over one shared cluster through an admission-
// controlled Session, then compare against running the same batch
// serially — the multi-query execution model in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"hsqp"
)

func main() {
	c, err := hsqp.NewCluster(hsqp.ClusterConfig{
		Servers:          3,
		WorkersPerServer: 4,
		Transport:        hsqp.RDMA,
		Rate:             hsqp.GbE, // slow link: queries are network-bound
		Scheduling:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const sf = 0.005
	fmt.Printf("loading TPC-H SF %g over 3 servers…\n", sf)
	c.LoadTPCH(hsqp.GenerateTPCH(sf, 42), false)

	mix := []int{12, 1, 12, 5, 12, 1, 12, 5}
	runBatch := func() { // warm the buffer pools to the multi-query working set
		var wg sync.WaitGroup
		s := c.NewSession(hsqp.SessionConfig{MaxConcurrent: len(mix), MaxQueued: len(mix)})
		defer s.Close()
		for _, qn := range mix {
			wg.Add(1)
			go func(qn int) {
				defer wg.Done()
				_, _, _ = s.RunContext(context.Background(), hsqp.TPCHQuery(qn, sf))
			}(qn)
		}
		wg.Wait()
	}
	runBatch()

	// Serial baseline: the same queries, one after another.
	serialStart := time.Now()
	for _, qn := range mix {
		if _, _, err := c.RunContext(context.Background(), hsqp.TPCHQuery(qn, sf)); err != nil {
			log.Fatal(err)
		}
	}
	serial := time.Since(serialStart)

	// Concurrent: every client stream in flight at once; the session
	// bounds admission so overload queues instead of thrashing.
	sess := c.NewSession(hsqp.SessionConfig{MaxConcurrent: 4, MaxQueued: len(mix)})
	defer sess.Close()
	var wg sync.WaitGroup
	concStart := time.Now()
	for i, qn := range mix {
		wg.Add(1)
		go func(i, qn int) {
			defer wg.Done()
			t0 := time.Now()
			res, _, err := sess.RunContext(context.Background(), hsqp.TPCHQuery(qn, sf))
			if err != nil {
				log.Printf("stream %d: %v", i, err)
				return
			}
			fmt.Printf("  stream %d: q%-2d → %3d rows in %v\n", i, qn, res.Rows(), time.Since(t0))
		}(i, qn)
	}
	wg.Wait()
	conc := time.Since(concStart)

	fmt.Printf("\n%d queries serial:     %v (%.1f qps)\n", len(mix), serial,
		float64(len(mix))/serial.Seconds())
	fmt.Printf("%d queries concurrent: %v (%.1f qps)  → %.2fx throughput\n", len(mix), conc,
		float64(len(mix))/conc.Seconds(), serial.Seconds()/conc.Seconds())
}
