// Network-tuning: the §2 story as an application. Sweeps the transport
// tuning ladder of Figure 5 (TCP datagram/connected modes, offload,
// interrupt pinning, RDMA) on the simulated InfiniBand fabric, then shows
// the effect of round-robin network scheduling on all-to-all shuffles
// (Figure 10(b)).
package main

import (
	"fmt"
	"log"
	"os"

	"hsqp"
	"hsqp/internal/bench"
)

func main() {
	fmt.Println("transport tuning on simulated InfiniBand 4×QDR (Figure 5):")
	if err := hsqp.ExperimentFigure5(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("uncoordinated all-to-all vs round-robin scheduling (Figure 10(b)):")
	if err := hsqp.ExperimentFigure10b(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("message size vs scheduling synchronization cost (Figure 10(c)):")
	if _, err := (bench.Figure10c{}).Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
