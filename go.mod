module hsqp

go 1.23
