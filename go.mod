module hsqp

go 1.24
